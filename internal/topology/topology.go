// Package topology models the NUMA machine topology that the NUMA-WS
// scheduler observes: sockets, cores, and the hop-distance matrix between
// sockets (the information numactl --hardware reports on a real machine).
//
// The paper's evaluation machine (Fig. 1) is a four-socket, 32-core Intel
// Xeon E5-4620 where each socket owns a last-level cache, a memory
// controller, and a DRAM bank. Sockets are connected point-to-point (QPI);
// socket 0 reaches sockets 1 and 2 in one hop and socket 3 in two hops.
package topology

import (
	"fmt"
	"strings"
)

// Topology describes a NUMA machine: how many sockets it has, how many cores
// live on each socket, and how far apart sockets are.
type Topology struct {
	sockets  int
	perSock  int
	distance [][]int // distance[i][j]: hop distance between sockets i and j
}

// New builds a topology with the given socket count and cores per socket,
// using the supplied inter-socket hop-distance matrix. The distance matrix
// must be square with side sockets, symmetric, and zero on the diagonal.
func New(sockets, coresPerSocket int, distance [][]int) (*Topology, error) {
	if sockets <= 0 {
		return nil, fmt.Errorf("topology: sockets must be positive, got %d", sockets)
	}
	if coresPerSocket <= 0 {
		return nil, fmt.Errorf("topology: coresPerSocket must be positive, got %d", coresPerSocket)
	}
	if len(distance) != sockets {
		return nil, fmt.Errorf("topology: distance matrix has %d rows, want %d", len(distance), sockets)
	}
	d := make([][]int, sockets)
	for i := range distance {
		if len(distance[i]) != sockets {
			return nil, fmt.Errorf("topology: distance row %d has %d entries, want %d", i, len(distance[i]), sockets)
		}
		d[i] = append([]int(nil), distance[i]...)
	}
	for i := 0; i < sockets; i++ {
		if d[i][i] != 0 {
			return nil, fmt.Errorf("topology: distance[%d][%d] = %d, want 0 on the diagonal", i, i, d[i][i])
		}
		for j := 0; j < sockets; j++ {
			if d[i][j] != d[j][i] {
				return nil, fmt.Errorf("topology: distance matrix not symmetric at (%d,%d)", i, j)
			}
			if i != j && d[i][j] <= 0 {
				return nil, fmt.Errorf("topology: distance[%d][%d] = %d, want positive off-diagonal", i, j, d[i][j])
			}
		}
	}
	return &Topology{sockets: sockets, perSock: coresPerSocket, distance: d}, nil
}

// MustNew is New but panics on error; for package-level machine presets.
func MustNew(sockets, coresPerSocket int, distance [][]int) *Topology {
	t, err := New(sockets, coresPerSocket, distance)
	if err != nil {
		panic(err)
	}
	return t
}

// XeonE5_4620 reproduces the paper's evaluation machine (Fig. 1): four
// sockets, eight cores each, point-to-point links such that socket 0 and
// socket 3 (and 1 and 2) are two hops apart and every other pair is one hop.
func XeonE5_4620() *Topology {
	return MustNew(4, 8, [][]int{
		{0, 1, 1, 2},
		{1, 0, 2, 1},
		{1, 2, 0, 1},
		{2, 1, 1, 0},
	})
}

// SingleSocket returns a degenerate UMA topology, useful as a baseline and
// in tests: one socket with the given core count.
func SingleSocket(cores int) *Topology {
	return MustNew(1, cores, [][]int{{0}})
}

// TwoSocket returns a two-socket topology with the given cores per socket.
func TwoSocket(coresPerSocket int) *Topology {
	return MustNew(2, coresPerSocket, [][]int{{0, 1}, {1, 0}})
}

// Sockets reports the number of sockets.
func (t *Topology) Sockets() int { return t.sockets }

// CoresPerSocket reports the number of cores on each socket.
func (t *Topology) CoresPerSocket() int { return t.perSock }

// Cores reports the total number of cores in the machine.
func (t *Topology) Cores() int { return t.sockets * t.perSock }

// SocketOf reports the socket that owns the given core. Cores are numbered
// socket-major: cores [0, perSocket) are on socket 0, and so on.
func (t *Topology) SocketOf(core int) int {
	if core < 0 || core >= t.Cores() {
		panic(fmt.Sprintf("topology: core %d out of range [0,%d)", core, t.Cores()))
	}
	return core / t.perSock
}

// CoresOn returns the core ids on the given socket, in increasing order.
func (t *Topology) CoresOn(socket int) []int {
	lo, hi := t.CoreRange(socket)
	cores := make([]int, hi-lo)
	for i := range cores {
		cores[i] = lo + i
	}
	return cores
}

// CoreRange reports the socket's cores as the half-open id range [lo, hi):
// core numbering is socket-major, so a socket's cores are contiguous. Hot
// paths iterate this range instead of allocating the CoresOn slice.
func (t *Topology) CoreRange(socket int) (lo, hi int) {
	if socket < 0 || socket >= t.sockets {
		panic(fmt.Sprintf("topology: socket %d out of range [0,%d)", socket, t.sockets))
	}
	return socket * t.perSock, (socket + 1) * t.perSock
}

// Distance reports the hop distance between two sockets (0 for the same
// socket).
func (t *Topology) Distance(a, b int) int {
	return t.distance[a][b]
}

// SameShape reports whether two topologies describe the same machine:
// equal socket and per-socket core counts and an identical hop-distance
// matrix. Constructors return fresh values (presets are built per call),
// so shape equality — not pointer identity — is what "same machine" means
// to callers that key cached state on a topology.
func (t *Topology) SameShape(o *Topology) bool {
	if t == o {
		return true
	}
	if o == nil || t.sockets != o.sockets || t.perSock != o.perSock {
		return false
	}
	for i := range t.distance {
		for j := range t.distance[i] {
			if t.distance[i][j] != o.distance[i][j] {
				return false
			}
		}
	}
	return true
}

// MaxDistance reports the largest hop distance in the machine.
func (t *Topology) MaxDistance() int {
	max := 0
	for i := range t.distance {
		for _, d := range t.distance[i] {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Placement maps P workers onto cores. The paper packs workers tightly,
// "using the smallest number of sockets" (Fig. 9): workers fill socket 0's
// cores first, then socket 1's, and so on.
type Placement struct {
	Workers int
	Core    []int // Core[w]: core id of worker w
	Socket  []int // Socket[w]: socket id of worker w
	Used    int   // number of sockets that host at least one worker
}

// Pack places p workers tightly onto the machine, smallest number of sockets
// first, mirroring the paper's thread-pinning policy. It panics if p exceeds
// the core count or is not positive.
func (t *Topology) Pack(p int) *Placement {
	if p <= 0 || p > t.Cores() {
		panic(fmt.Sprintf("topology: cannot place %d workers on %d cores", p, t.Cores()))
	}
	pl := &Placement{
		Workers: p,
		Core:    make([]int, p),
		Socket:  make([]int, p),
	}
	for w := 0; w < p; w++ {
		pl.Core[w] = w // socket-major core numbering packs tightly by construction
		pl.Socket[w] = t.SocketOf(w)
	}
	pl.Used = (p + t.perSock - 1) / t.perSock
	return pl
}

// Spread places p workers evenly across all sockets (round-robin), the
// policy NUMA-WS uses at startup when the user asks for all sockets: "the
// runtime spreads out the worker threads evenly across the sockets".
func (t *Topology) Spread(p int) *Placement {
	if p <= 0 || p > t.Cores() {
		panic(fmt.Sprintf("topology: cannot place %d workers on %d cores", p, t.Cores()))
	}
	pl := &Placement{
		Workers: p,
		Core:    make([]int, p),
		Socket:  make([]int, p),
	}
	next := make([]int, t.sockets) // next free core index within each socket
	for w := 0; w < p; w++ {
		s := w % t.sockets
		for next[s] >= t.perSock { // socket full; spill to the next one
			s = (s + 1) % t.sockets
		}
		pl.Core[w] = s*t.perSock + next[s]
		pl.Socket[w] = s
		next[s]++
	}
	used := 0
	for _, n := range next {
		if n > 0 {
			used++
		}
	}
	pl.Used = used
	return pl
}

// WorkersOn returns the worker ids of a placement that live on the given
// socket, in increasing order.
func (pl *Placement) WorkersOn(socket int) []int {
	var ws []int
	for w, s := range pl.Socket {
		if s == socket {
			ws = append(ws, w)
		}
	}
	return ws
}

// String renders the machine in the spirit of the paper's Fig. 1: one box
// per socket listing its cores, plus the hop-distance matrix.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NUMA machine: %d sockets x %d cores\n", t.sockets, t.perSock)
	for s := 0; s < t.sockets; s++ {
		fmt.Fprintf(&b, "  Socket %d [LLC, MC, DRAM]: cores %d-%d\n",
			s, s*t.perSock, (s+1)*t.perSock-1)
	}
	b.WriteString("  node distances (hops):\n")
	b.WriteString("      ")
	for j := 0; j < t.sockets; j++ {
		fmt.Fprintf(&b, "%4d", j)
	}
	b.WriteByte('\n')
	for i := 0; i < t.sockets; i++ {
		fmt.Fprintf(&b, "  %4d", i)
		for j := 0; j < t.sockets; j++ {
			fmt.Fprintf(&b, "%4d", t.distance[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
