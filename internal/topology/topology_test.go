package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestXeonE5_4620(t *testing.T) {
	top := XeonE5_4620()
	if got, want := top.Sockets(), 4; got != want {
		t.Errorf("Sockets() = %d, want %d", got, want)
	}
	if got, want := top.CoresPerSocket(), 8; got != want {
		t.Errorf("CoresPerSocket() = %d, want %d", got, want)
	}
	if got, want := top.Cores(), 32; got != want {
		t.Errorf("Cores() = %d, want %d", got, want)
	}
	if got, want := top.MaxDistance(), 2; got != want {
		t.Errorf("MaxDistance() = %d, want %d", got, want)
	}
	// Fig. 1: sockets 0 and 3 are two hops apart, 0 and 1 one hop.
	if got := top.Distance(0, 3); got != 2 {
		t.Errorf("Distance(0,3) = %d, want 2", got)
	}
	if got := top.Distance(0, 1); got != 1 {
		t.Errorf("Distance(0,1) = %d, want 1", got)
	}
	if got := top.Distance(2, 2); got != 0 {
		t.Errorf("Distance(2,2) = %d, want 0", got)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		sockets int
		cores   int
		dist    [][]int
	}{
		{"zero sockets", 0, 8, nil},
		{"zero cores", 2, 0, [][]int{{0, 1}, {1, 0}}},
		{"wrong rows", 2, 4, [][]int{{0, 1}}},
		{"wrong cols", 2, 4, [][]int{{0, 1}, {1}}},
		{"nonzero diagonal", 2, 4, [][]int{{1, 1}, {1, 0}}},
		{"asymmetric", 2, 4, [][]int{{0, 1}, {2, 0}}},
		{"nonpositive off-diagonal", 2, 4, [][]int{{0, 0}, {0, 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.sockets, tc.cores, tc.dist); err == nil {
				t.Errorf("New(%d, %d, %v) succeeded, want error", tc.sockets, tc.cores, tc.dist)
			}
		})
	}
}

func TestNewCopiesDistance(t *testing.T) {
	dist := [][]int{{0, 1}, {1, 0}}
	top := MustNew(2, 2, dist)
	dist[0][1] = 99
	if got := top.Distance(0, 1); got != 1 {
		t.Errorf("Distance(0,1) = %d after caller mutation, want 1 (matrix must be copied)", got)
	}
}

func TestSocketOf(t *testing.T) {
	top := XeonE5_4620()
	cases := []struct{ core, socket int }{
		{0, 0}, {7, 0}, {8, 1}, {15, 1}, {16, 2}, {23, 2}, {24, 3}, {31, 3},
	}
	for _, tc := range cases {
		if got := top.SocketOf(tc.core); got != tc.socket {
			t.Errorf("SocketOf(%d) = %d, want %d", tc.core, got, tc.socket)
		}
	}
}

func TestSocketOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SocketOf(32) did not panic")
		}
	}()
	XeonE5_4620().SocketOf(32)
}

func TestCoresOn(t *testing.T) {
	top := XeonE5_4620()
	got := top.CoresOn(2)
	want := []int{16, 17, 18, 19, 20, 21, 22, 23}
	if len(got) != len(want) {
		t.Fatalf("CoresOn(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CoresOn(2) = %v, want %v", got, want)
		}
	}
}

func TestPackTight(t *testing.T) {
	top := XeonE5_4620()
	// Fig. 9: "for 24 cores, 3 sockets are used."
	pl := top.Pack(24)
	if pl.Used != 3 {
		t.Errorf("Pack(24).Used = %d, want 3", pl.Used)
	}
	pl = top.Pack(8)
	if pl.Used != 1 {
		t.Errorf("Pack(8).Used = %d, want 1", pl.Used)
	}
	pl = top.Pack(9)
	if pl.Used != 2 {
		t.Errorf("Pack(9).Used = %d, want 2", pl.Used)
	}
	// Worker 0 pins to the first core of the first socket (root worker rule).
	if pl.Core[0] != 0 || pl.Socket[0] != 0 {
		t.Errorf("Pack: worker 0 at core %d socket %d, want core 0 socket 0", pl.Core[0], pl.Socket[0])
	}
}

func TestSpreadEven(t *testing.T) {
	top := XeonE5_4620()
	pl := top.Spread(32)
	if pl.Used != 4 {
		t.Errorf("Spread(32).Used = %d, want 4", pl.Used)
	}
	for s := 0; s < 4; s++ {
		if got := len(pl.WorkersOn(s)); got != 8 {
			t.Errorf("Spread(32): socket %d has %d workers, want 8", s, got)
		}
	}
	pl = top.Spread(6)
	for s := 0; s < 4; s++ {
		n := len(pl.WorkersOn(s))
		if n < 1 || n > 2 {
			t.Errorf("Spread(6): socket %d has %d workers, want 1 or 2", s, n)
		}
	}
}

func TestSpreadSpillsWhenSocketFull(t *testing.T) {
	top := TwoSocket(2) // 4 cores total
	pl := top.Spread(4)
	if got := len(pl.WorkersOn(0)); got != 2 {
		t.Errorf("Spread(4) on 2x2: socket 0 has %d workers, want 2", got)
	}
	if got := len(pl.WorkersOn(1)); got != 2 {
		t.Errorf("Spread(4) on 2x2: socket 1 has %d workers, want 2", got)
	}
	// All cores distinct.
	seen := map[int]bool{}
	for _, c := range pl.Core {
		if seen[c] {
			t.Errorf("Spread(4): core %d assigned twice", c)
		}
		seen[c] = true
	}
}

func TestPackPanicsOnTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pack(33) did not panic")
		}
	}()
	XeonE5_4620().Pack(33)
}

// Property: for any worker count, Pack assigns distinct cores, socket ids
// consistent with SocketOf, and uses ceil(p/coresPerSocket) sockets.
func TestPackProperties(t *testing.T) {
	top := XeonE5_4620()
	f := func(raw uint8) bool {
		p := int(raw)%top.Cores() + 1
		pl := top.Pack(p)
		seen := map[int]bool{}
		for w := 0; w < p; w++ {
			if seen[pl.Core[w]] {
				return false
			}
			seen[pl.Core[w]] = true
			if top.SocketOf(pl.Core[w]) != pl.Socket[w] {
				return false
			}
		}
		want := (p + top.CoresPerSocket() - 1) / top.CoresPerSocket()
		return pl.Used == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Spread never assigns the same core twice and balances within 1.
func TestSpreadProperties(t *testing.T) {
	top := XeonE5_4620()
	f := func(raw uint8) bool {
		p := int(raw)%top.Cores() + 1
		pl := top.Spread(p)
		seen := map[int]bool{}
		min, max := top.Cores(), 0
		for s := 0; s < top.Sockets(); s++ {
			n := len(pl.WorkersOn(s))
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		for _, c := range pl.Core {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	s := XeonE5_4620().String()
	for _, want := range []string{"4 sockets x 8 cores", "Socket 0", "Socket 3", "cores 24-31", "node distances"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}
