package topology

import (
	"strings"
	"testing"
)

// everyPreset builds each registered preset once.
func everyPreset(t *testing.T) map[string]*Topology {
	t.Helper()
	out := map[string]*Topology{}
	for _, name := range Presets() {
		top, ok := Preset(name)
		if !ok {
			t.Fatalf("Presets() lists %q but Preset(%q) does not resolve", name, name)
		}
		out[name] = top
	}
	return out
}

// TestPresetDistanceInvariants checks every preset's hop-distance matrix for
// the properties a metric must have: zero diagonal, symmetry, positive
// off-diagonal entries, and the triangle inequality (no pair of sockets is
// farther apart than any relay route between them).
func TestPresetDistanceInvariants(t *testing.T) {
	for name, top := range everyPreset(t) {
		n := top.Sockets()
		for i := 0; i < n; i++ {
			if d := top.Distance(i, i); d != 0 {
				t.Errorf("%s: distance(%d,%d) = %d, want 0", name, i, i, d)
			}
			for j := 0; j < n; j++ {
				if top.Distance(i, j) != top.Distance(j, i) {
					t.Errorf("%s: asymmetric at (%d,%d)", name, i, j)
				}
				if i != j && top.Distance(i, j) <= 0 {
					t.Errorf("%s: non-positive off-diagonal at (%d,%d)", name, i, j)
				}
				for k := 0; k < n; k++ {
					if direct, relay := top.Distance(i, j), top.Distance(i, k)+top.Distance(k, j); direct > relay {
						t.Errorf("%s: triangle violated: d(%d,%d)=%d > d(%d,%d)+d(%d,%d)=%d",
							name, i, j, direct, i, k, k, j, relay)
					}
				}
			}
		}
	}
}

// TestPresetInventory pins the preset registry: the five documented names,
// in order, all 32 cores so sweeps compare shape rather than size, and
// paper-4x8 is exactly the paper's machine.
func TestPresetInventory(t *testing.T) {
	want := []string{"paper-4x8", "2x16", "8x4", "snc-2x2x8", "uniform"}
	got := Presets()
	if len(got) != len(want) {
		t.Fatalf("Presets() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Presets() = %v, want %v", got, want)
		}
	}
	tops := everyPreset(t)
	for name, top := range tops {
		if top.Cores() != 32 {
			t.Errorf("%s has %d cores, want 32", name, top.Cores())
		}
	}
	paper, ref := tops["paper-4x8"], XeonE5_4620()
	if paper.Sockets() != ref.Sockets() || paper.CoresPerSocket() != ref.CoresPerSocket() {
		t.Fatal("paper-4x8 shape differs from XeonE5_4620")
	}
	for i := 0; i < ref.Sockets(); i++ {
		for j := 0; j < ref.Sockets(); j++ {
			if paper.Distance(i, j) != ref.Distance(i, j) {
				t.Errorf("paper-4x8 distance(%d,%d) = %d, want %d",
					i, j, paper.Distance(i, j), ref.Distance(i, j))
			}
		}
	}
}

func TestRing(t *testing.T) {
	r := Ring(8, 4)
	if r.Sockets() != 8 || r.CoresPerSocket() != 4 {
		t.Fatalf("Ring(8,4) shape = %dx%d", r.Sockets(), r.CoresPerSocket())
	}
	if d := r.Distance(0, 4); d != 4 {
		t.Errorf("opposite sockets on an 8-ring: distance %d, want 4", d)
	}
	if d := r.Distance(0, 7); d != 1 {
		t.Errorf("ring wrap-around: distance %d, want 1", d)
	}
	if got := r.MaxDistance(); got != 4 {
		t.Errorf("MaxDistance = %d, want 4", got)
	}
	// A 2-ring is fully connected.
	if d := Ring(2, 16).Distance(0, 1); d != 1 {
		t.Errorf("Ring(2) distance = %d, want 1", d)
	}
}

func TestClustered(t *testing.T) {
	c := Clustered(2, 2, 8)
	if c.Sockets() != 4 || c.CoresPerSocket() != 8 {
		t.Fatalf("Clustered(2,2,8) shape = %dx%d", c.Sockets(), c.CoresPerSocket())
	}
	// Nodes 0,1 share a package; 2,3 share the other.
	if d := c.Distance(0, 1); d != 1 {
		t.Errorf("intra-package distance = %d, want 1", d)
	}
	if d := c.Distance(1, 2); d != 2 {
		t.Errorf("cross-package distance = %d, want 2", d)
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		spec           string
		sockets, cores int
	}{
		{"paper-4x8", 4, 8},
		{"uniform", 1, 32},
		{"snc-2x2x8", 4, 8},
		{"2x4", 2, 4},   // generic shape, not a preset
		{"16x2", 16, 2}, // generic shape
		{"2x16", 2, 16}, // preset that is also a valid generic shape
	} {
		top, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if top.Sockets() != tc.sockets || top.CoresPerSocket() != tc.cores {
			t.Errorf("Parse(%q) = %dx%d, want %dx%d",
				tc.spec, top.Sockets(), top.CoresPerSocket(), tc.sockets, tc.cores)
		}
	}
	for _, bad := range []string{"", "nope", "4x", "x8", "0x4", "4x0", "-2x4", "4x8x2", "4x8 "} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		} else if !strings.Contains(err.Error(), "paper-4x8") && !strings.Contains(err.Error(), "positive") {
			t.Errorf("Parse(%q) error %q does not name the accepted forms", bad, err)
		}
	}
}
