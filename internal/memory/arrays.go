package memory

// Typed array helpers pair real Go slices (on which workloads perform the
// actual computation) with simulated Regions (against which the cache model
// charges access costs). The pairing is what lets a benchmark both compute a
// verifiable result and produce a faithful memory-access profile.

// F64 is a float64 array backed by a simulated region.
type F64 struct {
	Data []float64
	R    *Region
}

// NewF64 allocates an n-element float64 array under the given policy.
func NewF64(a *Allocator, name string, n int, pol Policy) *F64 {
	return &F64{
		Data: make([]float64, n),
		R:    a.Alloc(name, int64(n)*8, pol),
	}
}

// Span converts an element range to a (byte offset, byte length) pair for
// Context.Read/Write.
func (f *F64) Span(i, n int) (off, size int64) { return int64(i) * 8, int64(n) * 8 }

// I32 is an int32 array backed by a simulated region.
type I32 struct {
	Data []int32
	R    *Region
}

// NewI32 allocates an n-element int32 array under the given policy.
func NewI32(a *Allocator, name string, n int, pol Policy) *I32 {
	return &I32{
		Data: make([]int32, n),
		R:    a.Alloc(name, int64(n)*4, pol),
	}
}

// Span converts an element range to a (byte offset, byte length) pair.
func (f *I32) Span(i, n int) (off, size int64) { return int64(i) * 4, int64(n) * 4 }

// I64 is an int64 array backed by a simulated region.
type I64 struct {
	Data []int64
	R    *Region
}

// NewI64 allocates an n-element int64 array under the given policy.
func NewI64(a *Allocator, name string, n int, pol Policy) *I64 {
	return &I64{
		Data: make([]int64, n),
		R:    a.Alloc(name, int64(n)*8, pol),
	}
}

// Span converts an element range to a (byte offset, byte length) pair.
func (f *I64) Span(i, n int) (off, size int64) { return int64(i) * 8, int64(n) * 8 }

// The Reuse* helpers back the workload-input pool: a pooled workload
// instance keeps its Go data slices across runs but must re-register its
// regions with each run's fresh Allocator (regions carry first-touch page
// state, which is run-scoped). Called in the same statement order as the
// fresh-construction path, re-registration reproduces identical region base
// offsets, so a reused input is indistinguishable from a new one to the
// simulator.

// ReuseF64 rebinds old to a fresh region under a when its length matches,
// keeping its data; otherwise it allocates anew.
func ReuseF64(old *F64, a *Allocator, name string, n int, pol Policy) *F64 {
	if old != nil && len(old.Data) == n {
		old.R = a.Alloc(name, int64(n)*8, pol)
		return old
	}
	return NewF64(a, name, n, pol)
}

// ReuseI32 is ReuseF64 for int32 arrays.
func ReuseI32(old *I32, a *Allocator, name string, n int, pol Policy) *I32 {
	if old != nil && len(old.Data) == n {
		old.R = a.Alloc(name, int64(n)*4, pol)
		return old
	}
	return NewI32(a, name, n, pol)
}

// ReuseI64 is ReuseF64 for int64 arrays.
func ReuseI64(old *I64, a *Allocator, name string, n int, pol Policy) *I64 {
	if old != nil && len(old.Data) == n {
		old.R = a.Alloc(name, int64(n)*8, pol)
		return old
	}
	return NewI64(a, name, n, pol)
}
