package memory

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc("x", 10000, Interleave{})
	if r.Size() != 10000 {
		t.Errorf("Size() = %d, want 10000", r.Size())
	}
	if got, want := r.Pages(), 3; got != want { // ceil(10000/4096) = 3
		t.Errorf("Pages() = %d, want %d", got, want)
	}
	if r.Base()%PageSize != 0 {
		t.Errorf("Base() = %d, want page-aligned", r.Base())
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	a := NewAllocator(2)
	r1 := a.Alloc("a", 100, FirstTouch{})
	r2 := a.Alloc("b", 100, FirstTouch{})
	// Even tiny regions get distinct pages, so they never share a line.
	if r1.GlobalLine(99) >= r2.GlobalLine(0) {
		t.Errorf("regions share lines: r1 last line %d, r2 first line %d", r1.GlobalLine(99), r2.GlobalLine(0))
	}
	if r1.GlobalPage(0) == r2.GlobalPage(0) {
		t.Error("regions share a page")
	}
}

func TestFirstTouchBinding(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc("ft", 3*PageSize, FirstTouch{})
	if got := r.HomeOf(0); got != SocketUnbound {
		t.Errorf("HomeOf(0) before touch = %d, want unbound", got)
	}
	if got := r.TouchFrom(0, 2); got != 2 {
		t.Errorf("TouchFrom(0, 2) = %d, want 2", got)
	}
	// Second touch from a different socket does not rebind.
	if got := r.TouchFrom(100, 3); got != 2 {
		t.Errorf("TouchFrom(100, 3) = %d, want 2 (first touch wins)", got)
	}
	// Other pages remain unbound.
	if got := r.HomeOf(PageSize); got != SocketUnbound {
		t.Errorf("HomeOf(page 1) = %d, want unbound", got)
	}
}

func TestInterleavePolicy(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc("il", 8*PageSize, Interleave{})
	for pg := 0; pg < 8; pg++ {
		if got, want := r.HomeOf(int64(pg)*PageSize), pg%4; got != want {
			t.Errorf("page %d home = %d, want %d", pg, got, want)
		}
	}
	dist := r.Distribution(4)
	for s := 0; s < 4; s++ {
		if dist[s] != 2 {
			t.Errorf("socket %d owns %d pages, want 2", s, dist[s])
		}
	}
	if dist[4] != 0 {
		t.Errorf("%d unbound pages, want 0", dist[4])
	}
}

func TestBindToPolicy(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc("b3", 4*PageSize, BindTo{Socket: 3})
	for pg := 0; pg < 4; pg++ {
		if got := r.HomeOf(int64(pg) * PageSize); got != 3 {
			t.Errorf("page %d home = %d, want 3", pg, got)
		}
	}
}

func TestBindBlocksQuarters(t *testing.T) {
	// The Fig. 4 pattern: quarters of the array on sockets 0..3.
	a := NewAllocator(4)
	r := a.Alloc("quarters", 8*PageSize, BindBlocks{Blocks: 4, Sockets: []int{0, 1, 2, 3}})
	wantHomes := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for pg, want := range wantHomes {
		if got := r.HomeOf(int64(pg) * PageSize); got != want {
			t.Errorf("page %d home = %d, want %d", pg, got, want)
		}
	}
}

func TestBindBlocksUnevenPages(t *testing.T) {
	a := NewAllocator(4)
	// 5 pages over 4 blocks: per = ceil(5/4) = 2 -> blocks of pages {0,1},{2,3},{4}.
	r := a.Alloc("uneven", 5*PageSize, BindBlocks{Blocks: 4, Sockets: []int{0, 1, 2, 3}})
	wantHomes := []int{0, 0, 1, 1, 2}
	for pg, want := range wantHomes {
		if got := r.HomeOf(int64(pg) * PageSize); got != want {
			t.Errorf("page %d home = %d, want %d", pg, got, want)
		}
	}
}

func TestBindRange(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc("rebind", 4*PageSize, BindTo{Socket: 0})
	r.BindRange(PageSize, 2*PageSize, 2) // pages 1 and 2
	wantHomes := []int{0, 2, 2, 0}
	for pg, want := range wantHomes {
		if got := r.HomeOf(int64(pg) * PageSize); got != want {
			t.Errorf("page %d home = %d, want %d", pg, got, want)
		}
	}
	r.BindRange(0, 0, 3) // no-op
	if got := r.HomeOf(0); got != 0 {
		t.Errorf("BindRange with n=0 changed page 0 home to %d", got)
	}
}

func TestOffsetBoundsPanic(t *testing.T) {
	a := NewAllocator(2)
	r := a.Alloc("small", 100, FirstTouch{})
	for _, off := range []int64{-1, 100, 5000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HomeOf(%d) did not panic", off)
				}
			}()
			r.HomeOf(off)
		}()
	}
}

func TestAllocPanics(t *testing.T) {
	a := NewAllocator(2)
	defer func() {
		if recover() == nil {
			t.Error("Alloc with size 0 did not panic")
		}
	}()
	a.Alloc("zero", 0, FirstTouch{})
}

func TestNewAllocatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAllocator(0) did not panic")
		}
	}()
	NewAllocator(0)
}

// Property: line and page addresses are monotone in the offset and
// consistent with each other (a line's page is the byte's page).
func TestAddressProperties(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc("prop", 1<<20, Interleave{})
	f := func(raw uint32) bool {
		off := int64(raw) % r.Size()
		line := r.GlobalLine(off)
		page := r.GlobalPage(off)
		if line*LineSize/PageSize != page {
			return false
		}
		if off+1 < r.Size() && r.GlobalLine(off+1) < line {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: interleave distributes pages across sockets within 1 of evenly.
func TestInterleaveBalanceProperty(t *testing.T) {
	f := func(rawPages uint8, rawSockets uint8) bool {
		sockets := int(rawSockets)%8 + 1
		pages := int(rawPages)%64 + 1
		a := NewAllocator(sockets)
		r := a.Alloc("p", int64(pages)*PageSize, Interleave{})
		dist := r.Distribution(sockets)
		min, max := pages, 0
		for s := 0; s < sockets; s++ {
			if dist[s] < min {
				min = dist[s]
			}
			if dist[s] > max {
				max = dist[s]
			}
		}
		return max-min <= 1 && dist[sockets] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, tc := range []struct {
		pol  Policy
		want string
	}{
		{FirstTouch{}, "first-touch"},
		{Interleave{}, "interleave"},
		{BindTo{Socket: 2}, "bind(2)"},
		{BindBlocks{Blocks: 4, Sockets: []int{0, 1}}, "bind-blocks"},
	} {
		if !strings.Contains(tc.pol.String(), tc.want) {
			t.Errorf("%T.String() = %q, want contains %q", tc.pol, tc.pol.String(), tc.want)
		}
	}
}

func TestAllocatorString(t *testing.T) {
	a := NewAllocator(2)
	a.Alloc("alpha", 100, FirstTouch{})
	s := a.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "2 sockets") {
		t.Errorf("String() = %q, missing region or socket info", s)
	}
}
