// Package memory models the physical memory of a NUMA machine at page
// granularity. On the paper's testbed, data is placed on a socket's DRAM by
// the OS (first-touch), by the interleave policy, or explicitly by the
// application via mmap+mbind; NUMA-WS's library functions "are simply
// accomplished by calling the underlying mmap and mbind system calls".
//
// This package is the simulated equivalent: an Allocator hands out Regions,
// each Region is a range of simulated pages, and every page has a home
// socket assigned by an allocation Policy. The cache model consults the home
// socket of a page to decide whether an access is local or remote DRAM.
package memory

import (
	"fmt"
	"strings"
)

// PageSize is the simulated page size in bytes (4 KiB, as on Linux x86-64).
const PageSize = 4096

// LineSize is the cache line size in bytes; exported here because page and
// line geometry must agree between the memory and cache models.
const LineSize = 64

// SocketUnbound marks a page whose home socket is not yet decided. Under the
// first-touch policy pages start unbound and bind to the socket of the first
// core that touches them, exactly like Linux's default policy.
const SocketUnbound = -1

// Policy selects how a Region's pages map to sockets at allocation time.
type Policy interface {
	// Bind returns the home socket for page index pg (0-based within the
	// region) on a machine with sockets sockets, or SocketUnbound to defer
	// the decision to first touch.
	Bind(pg, sockets int) int
	// String names the policy for reports.
	String() string
}

// FirstTouch defers page binding until the first access; the page then binds
// to the accessing core's socket. This is the OS default the paper's Cilk
// Plus baseline runs under (they pick the better of first-touch and
// interleave per benchmark).
type FirstTouch struct{}

// Bind implements Policy; every page starts unbound.
func (FirstTouch) Bind(pg, sockets int) int { return SocketUnbound }

func (FirstTouch) String() string { return "first-touch" }

// Interleave spreads pages round-robin across all sockets, like
// numactl --interleave=all.
type Interleave struct{}

// Bind implements Policy.
func (Interleave) Bind(pg, sockets int) int { return pg % sockets }

func (Interleave) String() string { return "interleave" }

// BindTo places every page of the region on one socket, like mbind to a
// single node.
type BindTo struct{ Socket int }

// Bind implements Policy.
func (b BindTo) Bind(pg, sockets int) int { return b.Socket % sockets }

func (b BindTo) String() string { return fmt.Sprintf("bind(%d)", b.Socket) }

// BindBlocks partitions the region into Blocks equal contiguous chunks and
// binds the i'th chunk to socket Sockets[i % len(Sockets)]. This is the
// pattern Fig. 4's mergesort uses: "allocate the physical pages mapped in
// the ith quarters of the in and tmp arrays from the socket corresponding to
// the ith virtual place".
type BindBlocks struct {
	Blocks  int
	Sockets []int
	pages   int // total pages; set by the allocator before use
}

// Bind implements Policy.
func (b BindBlocks) Bind(pg, sockets int) int {
	if b.Blocks <= 0 || len(b.Sockets) == 0 || b.pages <= 0 {
		return SocketUnbound
	}
	per := (b.pages + b.Blocks - 1) / b.Blocks
	blk := pg / per
	if blk >= b.Blocks {
		blk = b.Blocks - 1
	}
	return b.Sockets[blk%len(b.Sockets)] % sockets
}

func (b BindBlocks) String() string {
	return fmt.Sprintf("bind-blocks(%d over %v)", b.Blocks, b.Sockets)
}

// Partition is the placement the NUMA-aware workloads use for banded data,
// generalized to any machine: the region splits into `places` contiguous
// blocks and the i'th block lands on socket i — Fig. 4's mmap+mbind pattern
// with the place count taken from the runtime instead of hard-wired to the
// paper's four sockets.
func Partition(places int) Policy {
	sockets := make([]int, places)
	for i := range sockets {
		sockets[i] = i
	}
	return BindBlocks{Blocks: places, Sockets: sockets}
}

// Region is a contiguous simulated allocation. Offsets into the region are
// bytes; the cache model converts them to global line and page addresses.
type Region struct {
	name  string
	id    int
	base  int64 // global byte address of the first byte
	size  int64
	home  []int32 // home socket per page; SocketUnbound until bound
	alloc *Allocator
}

// Name reports the region's diagnostic name.
func (r *Region) Name() string { return r.name }

// Size reports the region's length in bytes.
func (r *Region) Size() int64 { return r.size }

// Base reports the global byte address of the region's first byte. Global
// addresses let distinct regions share nothing: two regions never overlap a
// cache line.
func (r *Region) Base() int64 { return r.base }

// Pages reports the number of pages spanned by the region.
func (r *Region) Pages() int { return len(r.home) }

// HomeOf reports the home socket of the page containing byte offset off, or
// SocketUnbound if it has not been touched yet.
func (r *Region) HomeOf(off int64) int {
	return int(r.home[r.pageIndex(off)])
}

// TouchFrom binds the page containing off to socket s if it is unbound
// (first-touch), and reports the page's home socket afterwards.
func (r *Region) TouchFrom(off int64, s int) int {
	pg := r.pageIndex(off)
	if r.home[pg] == SocketUnbound {
		r.home[pg] = int32(s)
	}
	return int(r.home[pg])
}

// BindRange explicitly rebinds the pages overlapping [off, off+n) to socket
// s, the analogue of mbind on an existing mapping. Panics if the range is
// out of bounds.
func (r *Region) BindRange(off, n int64, s int) {
	if n <= 0 {
		return
	}
	first := r.pageIndex(off)
	last := r.pageIndex(off + n - 1)
	for pg := first; pg <= last; pg++ {
		r.home[pg] = int32(s)
	}
}

// GlobalLine converts a byte offset within the region to a global cache line
// address.
func (r *Region) GlobalLine(off int64) int64 {
	r.check(off)
	return (r.base + off) / LineSize
}

// GlobalPage converts a byte offset within the region to a global page
// address.
func (r *Region) GlobalPage(off int64) int64 {
	r.check(off)
	return (r.base + off) / PageSize
}

func (r *Region) pageIndex(off int64) int {
	r.check(off)
	return int((r.base+off)/PageSize - r.base/PageSize)
}

func (r *Region) check(off int64) {
	if off < 0 || off >= r.size {
		panic(fmt.Sprintf("memory: offset %d out of range for region %q of size %d", off, r.name, r.size))
	}
}

// Distribution reports, per socket, the number of the region's pages homed
// there; index len(result)-1 counts unbound pages.
func (r *Region) Distribution(sockets int) []int {
	dist := make([]int, sockets+1)
	for _, h := range r.home {
		if h == SocketUnbound {
			dist[sockets]++
		} else {
			dist[h]++
		}
	}
	return dist
}

// Allocator hands out non-overlapping Regions on a machine with a fixed
// socket count. The zero value is not usable; use NewAllocator.
type Allocator struct {
	sockets int
	next    int64
	regions []*Region
}

// NewAllocator returns an allocator for a machine with the given socket
// count.
func NewAllocator(sockets int) *Allocator {
	if sockets <= 0 {
		panic(fmt.Sprintf("memory: sockets must be positive, got %d", sockets))
	}
	return &Allocator{sockets: sockets}
}

// Sockets reports the machine's socket count.
func (a *Allocator) Sockets() int { return a.sockets }

// Alloc creates a page-aligned region of at least size bytes whose pages are
// bound according to pol. Size must be positive.
func (a *Allocator) Alloc(name string, size int64, pol Policy) *Region {
	if size <= 0 {
		panic(fmt.Sprintf("memory: allocation size must be positive, got %d", size))
	}
	pages := int((size + PageSize - 1) / PageSize)
	// Propagate total page count into block policies that need it.
	if bb, ok := pol.(BindBlocks); ok {
		bb.pages = pages
		pol = bb
	}
	r := &Region{
		name:  name,
		id:    len(a.regions),
		base:  a.next,
		size:  size,
		home:  make([]int32, pages),
		alloc: a,
	}
	for pg := 0; pg < pages; pg++ {
		r.home[pg] = int32(pol.Bind(pg, a.sockets))
	}
	a.next += int64(pages) * PageSize
	a.regions = append(a.regions, r)
	return r
}

// Regions returns all regions allocated so far, in allocation order.
func (a *Allocator) Regions() []*Region { return a.regions }

// String summarizes the allocator state for debugging.
func (a *Allocator) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "allocator: %d sockets, %d regions, %d bytes\n", a.sockets, len(a.regions), a.next)
	for _, r := range a.regions {
		fmt.Fprintf(&b, "  %-16s base=%-10d size=%-10d pages=%v\n", r.name, r.base, r.size, r.Distribution(a.sockets))
	}
	return b.String()
}
