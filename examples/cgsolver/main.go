// Cgsolver runs the conjugate-gradient benchmark end to end through the
// public library, demonstrating the processor-oblivious model: one
// program, many worker counts. It traces the cg scalability curve under
// classic work stealing and under NUMA-WS on the paper's machine, then
// sweeps the same benchmark across different machine shapes.
package main

import (
	"context"
	"fmt"

	"repro/pkg/numaws"
)

func curve(ctx context.Context, policy string, points []int) numaws.Series {
	s, err := numaws.New(
		numaws.WithScale(numaws.ScaleSmall),
		numaws.WithPolicy(policy),
		numaws.WithBenchmarks("cg"),
	)
	if err != nil {
		panic(err)
	}
	series, err := s.Scalability(ctx, points)
	if err != nil {
		panic(err)
	}
	return series[0]
}

func main() {
	ctx := context.Background()
	points := []int{1, 8, 16, 24, 32}

	// The processor-oblivious sweep of Fig. 9 for this one benchmark,
	// under both schedulers.
	cilk := curve(ctx, "cilk", points)
	nws := curve(ctx, "numaws", points)
	fmt.Println("cg on the simulated 4x8 NUMA machine, virtual cycles:")
	fmt.Printf("%8s %14s %14s %10s\n", "P", "Cilk T_P", "NUMA-WS T_P", "NWS gain")
	for i, p := range points {
		fmt.Printf("%8d %14d %14d %9.2f%%\n", p, cilk.TP[i], nws.TP[i],
			100*(1-float64(nws.TP[i])/float64(cilk.TP[i])))
	}
	cs, ns := cilk.Speedup(), nws.Speedup()
	fmt.Printf("\nscalability at P=%d: Cilk %.2fx, NUMA-WS %.2fx\n\n",
		points[len(points)-1], cs[len(cs)-1], ns[len(ns)-1])

	// The same program, different machines: a topology sweep over two
	// shapes with the same core budget.
	s, err := numaws.New(numaws.WithScale(numaws.ScaleSmall), numaws.WithBenchmarks("cg"))
	if err != nil {
		panic(err)
	}
	sweeps, err := s.Sweep(ctx, []string{"2x16", "8x4"}, []int{1, 16, 32})
	if err != nil {
		panic(err)
	}
	fmt.Println("machine-shape sensitivity (NUMA-WS speedup at each P):")
	for _, sw := range sweeps {
		sp := sw.Speedup()
		fmt.Printf("  %-6s (%d sockets x %2d cores):", sw.Topology, sw.Sockets, sw.Cores/sw.Sockets)
		for i, p := range sw.P {
			fmt.Printf("  P=%-3d %5.2fx", p, sp[i])
		}
		fmt.Println()
	}
}
