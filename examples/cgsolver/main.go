// Cgsolver runs the conjugate-gradient benchmark end to end: it solves the
// same banded sparse system on the native goroutine executor (real
// parallelism, wall-clock time) and on the simulated NUMA platform (virtual
// time under both schedulers), verifying the solution each time. It also
// demonstrates the processor-oblivious model: one program, many worker
// counts.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	mk := func(aware bool) *workloads.CG {
		return workloads.NewCG(4096, 24, 6, 32, workloads.Config{Aware: aware, Seed: 3})
	}

	// Native executor: real goroutines, wall-clock timing.
	w := mk(false)
	rt := core.NewRuntime(core.DefaultConfig(1, sched.PolicyCilk)) // allocation host
	w.Prepare(rt)
	start := time.Now()
	native.NewPool(0, 1).Run(w.Root())
	if err := w.Verify(); err != nil {
		panic(err)
	}
	fmt.Printf("native executor: solved 4096x4096 sparse system in %v (verified)\n\n", time.Since(start))

	// Simulated platform: the processor-oblivious sweep of Fig. 9 for this
	// one benchmark.
	fmt.Println("simulated NUMA machine, virtual cycles:")
	fmt.Printf("%8s %14s %14s %10s\n", "P", "Cilk T_P", "NUMA-WS T_P", "NWS gain")
	var t1cilk, t1nws, tpCilk, tpNWS int64
	for _, p := range []int{1, 8, 16, 24, 32} {
		times := map[sched.Policy]int64{}
		for _, pol := range []sched.Policy{sched.PolicyCilk, sched.PolicyNUMAWS} {
			w := mk(pol == sched.PolicyNUMAWS)
			rt := core.NewRuntime(core.DefaultConfig(p, pol))
			w.Prepare(rt)
			times[pol] = rt.Run(w.Root()).Time
			if err := w.Verify(); err != nil {
				panic(err)
			}
		}
		tpCilk, tpNWS = times[sched.PolicyCilk], times[sched.PolicyNUMAWS]
		if p == 1 {
			t1cilk, t1nws = tpCilk, tpNWS
		}
		fmt.Printf("%8d %14d %14d %9.2f%%\n", p, tpCilk, tpNWS,
			100*(1-float64(tpNWS)/float64(tpCilk)))
	}
	fmt.Printf("\nscalability at P=32: Cilk %.2fx, NUMA-WS %.2fx\n",
		float64(t1cilk)/float64(tpCilk), float64(t1nws)/float64(tpNWS))
}
