// Heatmap runs the paper's heat benchmark (Jacobi diffusion over time
// steps) on the simulated NUMA machine and prints, per platform, the
// Fig. 8-style breakdown: work, scheduling, and idle time, plus the work
// inflation and where memory accesses were serviced. It is the clearest
// demonstration of work inflation: a stencil whose rows live on one socket
// inflates badly under random stealing, and recovers once rows are banded
// and band tasks are earmarked for their sockets.
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	const p = 32
	fmt.Printf("heat 256x256, 10 steps, %d workers on 4 sockets\n\n", p)
	for _, tc := range []struct {
		label string
		pol   sched.Policy
		aware bool
	}{
		{"Cilk Plus (first-touch, no hints)", sched.PolicyCilk, false},
		{"NUMA-WS (banded rows + @place hints)", sched.PolicyNUMAWS, true},
	} {
		w := workloads.NewHeat(256, 256, 10, 32, workloads.Config{Aware: tc.aware, Seed: 11})
		rt := core.NewRuntime(core.DefaultConfig(p, tc.pol))
		w.Prepare(rt)
		rep := rt.Run(w.Root())
		if err := w.Verify(); err != nil {
			panic(err)
		}
		st := rep.Sched
		t1rt := core.NewRuntime(core.DefaultConfig(1, tc.pol))
		w1 := workloads.NewHeat(256, 256, 10, 32, workloads.Config{Aware: tc.aware, Seed: 11})
		w1.Prepare(t1rt)
		t1 := t1rt.Run(w1.Root()).Time

		fmt.Println(tc.label)
		fmt.Printf("  T1  = %12d cycles\n", t1)
		fmt.Printf("  T%d = %12d cycles  (speedup %.2fx)\n", p, rep.Time, float64(t1)/float64(rep.Time))
		fmt.Printf("  work %d  sched %d  idle %d  -> inflation W%d/T1 = %.2fx\n",
			st.WorkTotal(), st.SchedTotal(), st.IdleTotal(), p, float64(st.WorkTotal())/float64(t1))
		fmt.Printf("  steals=%d  pushes=%d  mailbox hits=%d\n",
			st.Steals, st.Pushes, st.MailboxSteals+st.MailboxSelf)
		c := rep.Cache
		fmt.Printf("  accesses: private %d, local LLC %d, remote cache %d, local DRAM %d, remote DRAM %d\n\n",
			c.Count[cache.KindPrivateHit], c.Count[cache.KindLocalLLC],
			c.Count[cache.KindRemoteCache], c.Count[cache.KindLocalDRAM], c.Count[cache.KindRemoteDRAM])
	}
}
