// Heatmap runs the paper's heat benchmark (Jacobi diffusion over time
// steps) through the public library and prints, per platform, the
// Fig. 8-style breakdown: work, scheduling and idle time, the work
// inflation, and where memory accesses were serviced. It is the clearest
// demonstration of work inflation: a stencil whose rows live on one socket
// inflates badly under random stealing, and recovers once rows are banded
// and band tasks are earmarked for their sockets.
package main

import (
	"context"
	"fmt"

	"repro/pkg/numaws"
)

func main() {
	ctx := context.Background()

	// One Measure call produces both platforms' T1/TP and the
	// work/scheduling/idle breakdown.
	s, err := numaws.New(numaws.WithScale(numaws.ScaleSmall))
	if err != nil {
		panic(err)
	}
	row, err := s.Measure(ctx, "heat")
	if err != nil {
		panic(err)
	}
	fmt.Printf("heat (%s), %d workers on %d sockets\n\n", row.Input, row.P, s.Machine().Sockets)
	for _, tc := range []struct {
		label  string
		policy string
		pr     numaws.PlatformResult
	}{
		{"Cilk Plus (first-touch, no hints)", "cilk", row.Cilk},
		{"NUMA-WS (banded rows + @place hints)", "numaws", row.NUMAWS},
	} {
		fmt.Println(tc.label)
		fmt.Printf("  T1  = %12d cycles\n", tc.pr.T1)
		fmt.Printf("  T%d = %12d cycles  (speedup %.2fx)\n", row.P, tc.pr.TP, tc.pr.Scalability())
		fmt.Printf("  work %d  sched %d  idle %d  -> inflation W%d/T1 = %.2fx\n",
			tc.pr.WP, tc.pr.SP, tc.pr.IP, row.P, tc.pr.WorkInflation())

		// A single run under the same policy shows the memory-access mix
		// behind the inflation numbers.
		ps, err := numaws.New(numaws.WithScale(numaws.ScaleSmall), numaws.WithPolicy(tc.policy))
		if err != nil {
			panic(err)
		}
		rep, err := ps.Run(ctx, "heat")
		if err != nil {
			panic(err)
		}
		a := rep.Accesses
		fmt.Printf("  steals=%d  pushes=%d  mailbox hits=%d\n", rep.Steals, rep.Pushes, rep.MailboxHits)
		fmt.Printf("  accesses: private %d, local LLC %d, remote cache %d, local DRAM %d, remote DRAM %d (remote total %d)\n\n",
			a.PrivateHit, a.LocalLLC, a.RemoteCache, a.LocalDRAM, a.RemoteDRAM, a.Remote())
	}
}
