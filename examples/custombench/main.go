// Custombench shows the benchmark registration hook of the public
// simulator library (repro/pkg/numaws): define a benchmark once with
// RegisterBenchmark — a name, per-scale inputs, a computation against the
// facade Context, and a serial-reference verifier — and it flows through
// the whole measurement pipeline (suite listing, the paper's comparison
// protocol, scalability curves, renderers) exactly like the built-in
// suite, without touching any internal package.
package main

import (
	"context"
	"fmt"

	"repro/pkg/numaws"
)

// scan is the registered computation: an inclusive prefix-sum over a
// synthetic array by recursive halving (upsweep/downsweep), a classic
// fork-join kernel with a dag shape none of the built-in benchmarks has.
type scan struct {
	data  []int64
	grain int
}

// sweep adds base to every element of [lo, hi), recursing in parallel and
// accumulating left-subtree sums on the way — a simplified one-pass
// parallel scan (each leaf serially scans its chunk).
func (s *scan) sweep(lo, hi int, base int64, sums []int64, idx int) numaws.Task {
	return func(ctx numaws.Context) {
		if hi-lo <= s.grain {
			acc := base
			for i := lo; i < hi; i++ {
				acc += s.data[i]
				s.data[i] = acc
			}
			sums[idx] = acc - base
			ctx.Compute(int64(hi-lo) * 2)
			return
		}
		mid := (lo + hi) / 2
		// The left half's total is needed before the right half can start:
		// sum it first (spawned against the metadata walk), then scan both
		// halves in parallel.
		var leftSum int64
		ctx.Spawn(func(c numaws.Context) {
			for i := lo; i < mid; i++ {
				leftSum += s.data[i]
			}
			c.Compute(int64(mid - lo))
		})
		ctx.Sync()
		sub := make([]int64, 2)
		ctx.Spawn(s.sweep(lo, mid, base, sub, 0))
		ctx.Call(s.sweep(mid, hi, base+leftSum, sub, 1))
		ctx.Sync()
		sums[idx] = sub[0] + sub[1]
		ctx.Compute(4)
	}
}

// Registration happens at init time — before any simulation can run or
// snapshot the suite — so the new benchmark is indistinguishable from a
// built-in one. Scale maps to an input size; Verify compares against the
// obvious serial scan.
func init() {
	err := numaws.RegisterBenchmark(numaws.BenchmarkDef{
		Name:  "scan",
		Input: func(sc numaws.Scale) string { return fmt.Sprintf("%d/4096", scanSize(sc)) },
		Fig3:  true,
		Curve: "scan",
		Make: func(sc numaws.Scale, aware bool) numaws.BenchmarkRun {
			n := scanSize(sc)
			s := &scan{data: make([]int64, n), grain: 4096}
			for i := range s.data {
				s.data[i] = int64(i%17 - 8)
			}
			want := make([]int64, n)
			acc := int64(0)
			for i := range want {
				acc += int64(i%17 - 8)
				want[i] = acc
			}
			root := make([]int64, 1)
			return numaws.BenchmarkRun{
				Root: s.sweep(0, n, 0, root, 0),
				Verify: func() error {
					for i, v := range s.data {
						if v != want[i] {
							return fmt.Errorf("scan: element %d is %d, want %d", i, v, want[i])
						}
					}
					return nil
				},
			}
		},
	})
	if err != nil {
		panic(err)
	}
}

func main() {
	ctx := context.Background()
	s, err := numaws.New(numaws.WithScale(numaws.ScaleSmall))
	if err != nil {
		panic(err)
	}

	// The registered benchmark is part of the suite like any other.
	fmt.Println("session suite:")
	for _, b := range s.Benchmarks() {
		marker := " "
		if b.Name == "scan" {
			marker = "*"
		}
		fmt.Printf("  %s %-12s %s\n", marker, b.Name, b.Input)
	}

	// And it runs the paper's full comparison protocol.
	row, err := s.Measure(ctx, "scan")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nscan: TS=%d  Cilk T%d=%d (%.2fx)  NUMA-WS T%d=%d (%.2fx)\n",
		row.TS, row.P, row.Cilk.TP, row.Cilk.Scalability(),
		row.P, row.NUMAWS.TP, row.NUMAWS.Scalability())
}

func scanSize(sc numaws.Scale) int {
	if sc == numaws.ScaleSmall {
		return 1 << 17
	}
	return 1 << 22
}
