// Oblivious demonstrates the two extensions built on top of the paper:
// socket-oblivious placement (core.AutoPlace derives hints from where the
// data's pages actually live, the direction the paper's conclusion asks
// for) and measured-dag introspection (core.Config.RecordDAG reports the
// run's real work, span and parallelism — the quantities the paper's
// Section IV bounds are stated in).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/sched"
)

func main() {
	const bands = 64
	run := func(auto bool) {
		cfg := core.DefaultConfig(32, sched.PolicyNUMAWS)
		cfg.RecordDAG = true
		rt := core.NewRuntime(cfg)
		// The program never names a socket: it just asks for banded pages.
		data := rt.Alloc("data", bands*8*memory.PageSize,
			memory.BindBlocks{Blocks: 4, Sockets: []int{0, 1, 2, 3}})
		bandBytes := data.Size() / bands

		var sweep func(c core.Context, lo, hi int)
		sweep = func(c core.Context, lo, hi int) {
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				l, h := lo, mid
				hint := core.PlaceAny
				if auto {
					hint = core.AutoPlace(c, data, int64(l)*bandBytes, int64(h-l)*bandBytes)
				}
				c.SpawnAt(hint, func(cc core.Context) { sweep(cc, l, h) })
				lo = mid
			}
			c.Read(data, int64(lo)*bandBytes, bandBytes)
			c.Compute(20_000)
		}
		rep := rt.Run(func(ctx core.Context) {
			for pass := 0; pass < 5; pass++ {
				sweep(ctx, 0, bands)
				ctx.Sync()
			}
		})
		label := "unhinted    "
		if auto {
			label = "auto-placed "
		}
		fmt.Printf("%s T32=%-9d remote accesses=%-7d steals=%-4d pushes=%d\n",
			label, rep.Time, rep.Cache.Remote(), rep.Sched.Steals, rep.Sched.Pushes)
		if auto {
			fmt.Printf("\nmeasured dag: work=%d cycles, span=%d cycles, parallelism=%.1f\n",
				rep.DAG.Work(), rep.DAG.Span(), rep.DAG.Parallelism())
		}
	}
	fmt.Println("banded sweep over 4-socket data, 32 workers, NUMA-WS scheduler")
	run(false)
	run(true)
}
