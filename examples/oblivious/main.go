// Oblivious demonstrates the library's two run-introspection surfaces:
// streaming measurement (Session.Each emits every completed simulation as
// it finishes — the interface long sweeps and dashboards build on, and the
// one that keeps working under context cancellation) and measured-dag
// introspection (work, span and parallelism, the quantities the paper's
// Section IV bounds are stated in).
package main

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/pkg/numaws"
)

func main() {
	ctx := context.Background()
	s, err := numaws.New(
		numaws.WithScale(numaws.ScaleSmall),
		numaws.WithBenchmarks("cilksort", "heat", "cg"),
		numaws.WithSeeds(2),
	)
	if err != nil {
		panic(err)
	}

	// Streaming: every (benchmark, policy, P, seed) simulation reports as
	// it completes, long before the aggregated rows exist.
	var done atomic.Int64
	fmt.Println("streaming the measurement grid (completion order):")
	rows, err := s.Each(ctx, func(r numaws.Run) {
		fmt.Printf("  [%2d] %-8s %-7s P=%-2d seed=%d  T=%d cycles\n",
			done.Add(1), r.Bench, r.Policy, r.P, r.Seed, r.Time)
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("aggregated rows after the stream: %d benchmarks\n\n", len(rows))

	// Dag introspection: the measured work/span/parallelism behind each
	// benchmark's scalability.
	dags, err := s.DAGs(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println("measured computation dags (parallelism = work/span):")
	for _, d := range dags {
		fmt.Printf("  %-10s work=%-12d span=%-10d parallelism=%.1f\n",
			d.Bench, d.Work, d.Span, d.Parallelism)
	}

	// The same streaming call under a cancellable context: embedders can
	// abort a multi-hour sweep and keep the rows streamed so far.
	cctx, cancel := context.WithCancel(ctx)
	var kept atomic.Int64
	_, err = s.Each(cctx, func(r numaws.Run) {
		if kept.Add(1) == 4 {
			cancel() // stop after a handful of rows
		}
	})
	fmt.Printf("\ncancelled mid-sweep after %d rows: err = %v\n", kept.Load(), err)
}
