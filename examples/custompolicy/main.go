// Custompolicy shows the policy registration hook of the public simulator
// library (repro/pkg/numaws): define a scheduling policy once with
// RegisterPolicy — a name, its machinery flags, a victim-selection
// function against the facade's Rand/PolicyView pair, and optionally an
// adaptation hook — and it competes through the whole measurement pipeline
// (sessions, the CLI's -policy flag, the sweep service's policies axis and
// the tournament) exactly like the built-in schedulers, without touching
// any internal package.
package main

import (
	"context"
	"fmt"

	"repro/pkg/numaws"
)

// Registration happens at init time — before any simulation can run or
// snapshot the registry — so the new policy is indistinguishable from a
// built-in one.
//
// The example policy is "ring": a thief probes its clockwise neighbor
// sockets first, widening one hop class per failed attempt, and falls back
// to the built-in biased draw once it has circled the machine. It also
// adapts: every 2^14 events it re-weights hop classes toward where steals
// actually succeeded, exactly the feedback loop the built-in adaptive-bias
// policy runs.
func init() {
	err := numaws.RegisterPolicy(numaws.PolicyDef{
		Name:   "ring",
		Biased: true,
		Pushes: true,
		Victim: func(r numaws.Rand, v numaws.PolicyView) int {
			// Widen the search by one hop class per consecutive failure:
			// streak 0 probes same-socket mates, streak 1 adds 1-hop
			// sockets, and so on. Past the machine diameter, trust the
			// engine's biased distribution.
			maxHop := v.Streak()
			if maxHop > v.MaxHops() {
				return v.PickBiased(r)
			}
			mySock := v.SocketOf(v.Self())
			// Count candidates within maxHop hops, then draw uniformly
			// among them with a second pass — two passes, one draw, no
			// allocation.
			n := 0
			for w := 0; w < v.Workers(); w++ {
				if w != v.Self() && v.Hops(mySock, v.SocketOf(w)) <= maxHop {
					n++
				}
			}
			if n == 0 {
				return v.PickUniform(r)
			}
			k := r.Intn(n)
			for w := 0; w < v.Workers(); w++ {
				if w != v.Self() && v.Hops(mySock, v.SocketOf(w)) <= maxHop {
					if k == 0 {
						return w
					}
					k--
				}
			}
			return v.PickUniform(r) // unreachable
		},
		AdaptEvery: 1 << 14,
		Adapt: func(obs numaws.PolicyObservation, weights []float64) bool {
			var total int64
			for _, s := range obs.StealsByHop {
				total += s
			}
			if total == 0 {
				return false
			}
			changed := false
			for h := range weights {
				w := 1 + 3*float64(obs.StealsByHop[h])/float64(total)
				if w != weights[h] {
					weights[h] = w
					changed = true
				}
			}
			return changed
		},
	})
	if err != nil {
		panic(err)
	}
}

func main() {
	ctx := context.Background()

	// The registered policy is listed like any built-in.
	fmt.Println("registered policies:")
	for _, p := range numaws.Policies() {
		marker := " "
		if p == "ring" {
			marker = "*"
		}
		fmt.Printf("  %s %s\n", marker, p)
	}

	// Drive a session under it by name.
	s, err := numaws.New(numaws.WithScale(numaws.ScaleSmall),
		numaws.WithPolicy("ring"), numaws.WithWorkers(16))
	if err != nil {
		panic(err)
	}
	rep, err := s.Run(ctx, "heat")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nheat under ring at P=16: T=%d, %d steals (%d remote accesses)\n",
		rep.Time, rep.Steals, rep.Accesses.Remote())

	// And let it compete: a tournament ranks every registered policy —
	// ring included — across a benchmark grid on the session's machine.
	tour, err := s.Tournament(ctx, nil, "heat", "cilksort")
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Println(tour.Table())
}
