// Quickstart: express a fork-join computation once, then run it three ways —
// serial elision (TS), the simulated NUMA machine under both schedulers
// (T1, TP with full time breakdown), and the native goroutine executor.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/sched"
)

// sumTree computes the sum of squares of [lo, hi) by binary spawning,
// charging one compute cycle per element so the simulated times are
// meaningful.
func sumTree(lo, hi int, out *int64) core.Task {
	return func(ctx core.Context) {
		if hi-lo <= 1024 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i) * int64(i)
			}
			*out = s
			ctx.Compute(int64(hi - lo))
			return
		}
		mid := (lo + hi) / 2
		var left, right int64
		ctx.Spawn(sumTree(lo, mid, &left))
		ctx.Call(sumTree(mid, hi, &right))
		ctx.Sync()
		*out = left + right
		ctx.Compute(1)
	}
}

func main() {
	const n = 1 << 20
	var result int64
	task := sumTree(0, n, &result)

	// 1. Serial elision: spawn degenerates to call, sync to no-op.
	rt := core.NewRuntime(core.DefaultConfig(1, sched.PolicyCilk))
	ts := rt.RunSerial(task)
	fmt.Printf("serial elision: sum=%d  TS=%d cycles\n", result, ts.Time)

	// 2. Simulated platform, both schedulers, P=32 on the paper's 4x8
	// NUMA machine.
	for _, pol := range []sched.Policy{sched.PolicyCilk, sched.PolicyNUMAWS} {
		result = 0
		rt := core.NewRuntime(core.DefaultConfig(32, pol))
		rep := rt.Run(task)
		fmt.Printf("%-8s P=32: sum=%d  T32=%d cycles  speedup=%.1fx  steals=%d\n",
			pol, result, rep.Time, float64(ts.Time)/float64(rep.Time), rep.Sched.Steals)
	}

	// 3. Native goroutine executor: real parallelism, no cost model.
	result = 0
	native.NewPool(0, 1).Run(task)
	fmt.Printf("native:        sum=%d (real goroutines)\n", result)
}
