// Quickstart for the public simulator library (repro/pkg/numaws): measure a
// paper benchmark in three lines, then express a custom fork-join
// computation once and run it three ways — serial elision (TS) and the
// simulated NUMA machine under both registered schedulers.
package main

import (
	"context"
	"fmt"

	"repro/pkg/numaws"
)

// sumTree computes the sum of squares of [lo, hi) by binary spawning,
// charging one compute cycle per element so the simulated times are
// meaningful.
func sumTree(lo, hi int, out *int64) numaws.Task {
	return func(ctx numaws.Context) {
		if hi-lo <= 1024 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i) * int64(i)
			}
			*out = s
			ctx.Compute(int64(hi - lo))
			return
		}
		mid := (lo + hi) / 2
		var left, right int64
		ctx.Spawn(sumTree(lo, mid, &left))
		ctx.Call(sumTree(mid, hi, &right))
		ctx.Sync()
		*out = left + right
		ctx.Compute(1)
	}
}

func main() {
	ctx := context.Background()

	// 1. The three-line library quickstart: measure one benchmark under
	// the paper's full protocol (TS, T1, TP on both platforms).
	s, err := numaws.New(numaws.WithScale(numaws.ScaleSmall))
	if err != nil {
		panic(err)
	}
	row, err := s.Measure(ctx, "cilksort")
	if err != nil {
		panic(err)
	}
	fmt.Printf("cilksort: TS=%d  Cilk T%d=%d (%.2fx)  NUMA-WS T%d=%d (%.2fx)\n\n",
		row.TS, row.P, row.Cilk.TP, row.Cilk.Scalability(),
		row.P, row.NUMAWS.TP, row.NUMAWS.Scalability())

	// 2. A custom computation through the same library: serial elision
	// first, then the whole paper machine under each registered policy.
	const n = 1 << 20
	var result int64
	ts, err := s.RunTaskSerial(ctx, sumTree(0, n, &result))
	if err != nil {
		panic(err)
	}
	fmt.Printf("serial elision: sum=%d  TS=%d cycles\n", result, ts.Time)
	for _, policy := range numaws.Policies() {
		ps, err := numaws.New(numaws.WithPolicy(policy))
		if err != nil {
			panic(err)
		}
		result = 0
		rep, err := ps.RunTask(ctx, sumTree(0, n, &result))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s P=%d: sum=%d  TP=%d cycles  speedup=%.1fx  steals=%d\n",
			policy, rep.Workers, result, rep.Time, float64(ts.Time)/float64(rep.Time), rep.Steals)
	}
}
