// Mergesort revisits the paper's Fig. 4 walkthrough through the public
// library: cilksort — a parallel mergesort whose quarters carry locality
// hints and whose arrays are bound quarter-by-quarter to the matching
// sockets — run under classic work stealing and under NUMA-WS, contrasting
// the work inflation and mailbox activity of the two schedulers, then
// measured under the paper's full protocol.
package main

import (
	"context"
	"fmt"

	"repro/pkg/numaws"
)

func run(ctx context.Context, policy string) numaws.RunReport {
	s, err := numaws.New(
		numaws.WithScale(numaws.ScaleSmall),
		numaws.WithPolicy(policy),
		numaws.WithBenchmarks("cilksort"),
	)
	if err != nil {
		panic(err)
	}
	rep, err := s.Run(ctx, "cilksort")
	if err != nil {
		panic(err)
	}
	return rep
}

func main() {
	ctx := context.Background()
	fmt.Println("cilksort (Fig. 4) on the paper's 4-socket machine, whole-machine workers")
	// Classic work stealing: no hints, serial-first-touch placement; then
	// NUMA-WS: quarters bound to sockets, @p# hints, biased steals + lazy
	// work pushing. The policy decides the workload configuration.
	for _, policy := range []string{"cilk", "numaws"} {
		rep := run(ctx, policy)
		fmt.Printf("%-8s T%d=%-10d work=%-10d sched=%-8d idle=%-10d steals=%-5d pushes=%d\n",
			rep.Policy, rep.Workers, rep.Time, rep.Work, rep.Sched, rep.Idle, rep.Steals, rep.Pushes)
	}

	// The same comparison via the paper's measurement protocol, including
	// T1 and TS (small scale so this runs in seconds).
	s, err := numaws.New(numaws.WithScale(numaws.ScaleSmall))
	if err != nil {
		panic(err)
	}
	row, err := s.Measure(ctx, "cilksort")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nTS=%d\nCilk:    T1=%d (%.2fx)  T%d=%d  inflation=%.2fx\nNUMA-WS: T1=%d (%.2fx)  T%d=%d  inflation=%.2fx\n",
		row.TS,
		row.Cilk.T1, row.Cilk.SpawnOverhead(row.TS), row.P, row.Cilk.TP, row.Cilk.WorkInflation(),
		row.NUMAWS.T1, row.NUMAWS.SpawnOverhead(row.TS), row.P, row.NUMAWS.TP, row.NUMAWS.WorkInflation())
}
