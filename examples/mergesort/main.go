// Mergesort reproduces the paper's Fig. 4 walkthrough: a four-way parallel
// mergesort whose quarters carry locality hints (@p0..@p3) and whose arrays
// are bound quarter-by-quarter to the matching sockets. It then contrasts
// work inflation under classic work stealing and under NUMA-WS.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func run(pol sched.Policy, aware bool) {
	w := workloads.NewCilksort(1<<18, 2048, workloads.Config{Aware: aware, Seed: 7})
	rt := core.NewRuntime(core.DefaultConfig(32, pol))
	w.Prepare(rt)
	rep := rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		panic(err)
	}
	st := rep.Sched
	fmt.Printf("%-8s aware=%-5v  T32=%-10d W32=%-10d sched=%-8d idle=%-10d steals=%-5d pushes=%d\n",
		pol, aware, rep.Time, st.WorkTotal(), st.SchedTotal(), st.IdleTotal(), st.Steals, st.Pushes)
}

func main() {
	fmt.Println("cilksort (Fig. 4), 2^18 keys, 32 workers on a 4-socket machine")
	// Classic work stealing: no hints, serial-first-touch placement.
	run(sched.PolicyCilk, false)
	// NUMA-WS: quarters bound to sockets, @p# hints, biased steals +
	// lazy work pushing.
	run(sched.PolicyNUMAWS, true)

	// The same comparison via the paper's measurement harness, including
	// T1 and TS (small scale so this runs in seconds).
	spec := harness.Specs(harness.ScaleSmall)[1] // cilksort
	row, err := harness.Measure(spec, harness.Options{Verify: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nTS=%d\nCilk:    T1=%d (%.2fx)  T32=%d  inflation=%.2fx\nNUMA-WS: T1=%d (%.2fx)  T32=%d  inflation=%.2fx\n",
		row.TS,
		row.Cilk.T1, row.Cilk.SpawnOverhead(row.TS), row.Cilk.TP, row.Cilk.WorkInflation(),
		row.NUMAWS.T1, row.NUMAWS.SpawnOverhead(row.TS), row.NUMAWS.TP, row.NUMAWS.WorkInflation())
}
