// Package repro's root benchmark harness: one benchmark per paper table and
// figure, plus ablation benchmarks for the design choices DESIGN.md calls
// out. Each benchmark iteration is one full simulated run; derived paper
// metrics (work inflation, speedup, steal counts) are attached via
// b.ReportMetric so `go test -bench` output carries the same quantities the
// paper's tables report.
//
// Benchmarks default to the small input scale so the whole suite runs in
// minutes; `cmd/numaws` regenerates the full-scale tables recorded in
// EXPERIMENTS.md.
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/deque"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workloads"
)

func benchSpecs(b *testing.B) []harness.Spec {
	b.Helper()
	return harness.Specs(harness.ScaleSmall)
}

func specByName(b *testing.B, name string) harness.Spec {
	b.Helper()
	for _, s := range benchSpecs(b) {
		if s.Name == name {
			return s
		}
	}
	b.Fatalf("no spec named %q", name)
	return harness.Spec{}
}

// allNames is the paper's nine — the set the committed BENCH_baseline.json
// was captured over, kept stable so CI benchstat comparisons stay
// apples-to-apples. The Cilk-suite additions get their own benchmark
// family (BenchmarkCilkSuite) below.
var allNames = []string{
	"cg", "cilksort", "heat", "hull1", "hull2",
	"matmul", "matmul-z", "strassen", "strassen-z",
}

// cilkNames is the registry's Cilk-suite additions.
var cilkNames = []string{"fib", "nqueens", "fft", "lu", "rectmul"}

// BenchmarkCilkSuite runs the added benchmarks under the Table 7 protocol
// (one verified P=32 run per iteration, per platform), seeding the perf
// trajectory for the opened suite without disturbing the paper-nine
// baseline series.
func BenchmarkCilkSuite(b *testing.B) {
	for _, name := range cilkNames {
		spec := specByName(b, name)
		for _, pol := range []sched.Policy{sched.Cilk, sched.NUMAWS} {
			b.Run(fmt.Sprintf("%s/%v", name, pol), func(b *testing.B) {
				b.ReportAllocs()
				var rep *core.Report
				var err error
				for i := 0; i < b.N; i++ {
					rep, err = harness.RunOne(context.Background(), spec, pol, harness.Options{Verify: true})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(rep.Time), "T32-cycles")
			})
		}
	}
}

// policyNames are the policies that exercise the widened hook contract
// (DESIGN.md "Policy hook contract"): the tournament entrants beyond the
// paper's pair.
var policyNames = []string{"steal-half", "socket-first", "adaptive-bias"}

// BenchmarkPolicy runs the hook-contract policies under the Table 7
// protocol (one verified P=32 run per iteration) so their cycle counts
// and allocation footprints sit in the same gated series as the
// built-ins: the benchgate job fails if a hook starts allocating on the
// steal path or a refactor shifts a victim draw.
func BenchmarkPolicy(b *testing.B) {
	spec := specByName(b, "heat")
	for _, name := range policyNames {
		pol, err := sched.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("heat/%v", pol), func(b *testing.B) {
			b.ReportAllocs()
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				rep, err = harness.RunOne(context.Background(), spec, pol, harness.Options{Verify: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Time), "T32-cycles")
		})
	}
}

// BenchmarkFig3 regenerates Fig. 3's bars: Cilk Plus total processing time
// at P=32 decomposed into work, scheduling, and idle, normalized to TS.
func BenchmarkFig3(b *testing.B) {
	for _, name := range []string{"cilksort", "heat", "strassen", "hull1", "hull2", "cg", "matmul"} {
		spec := specByName(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			ts, err := harness.RunSerial(context.Background(), spec, harness.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				rep, err = harness.RunOne(context.Background(), spec, sched.Cilk, harness.Options{Verify: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			tsF := float64(ts.Time)
			b.ReportMetric(float64(rep.Sched.WorkTotal())/tsF, "work/TS")
			b.ReportMetric(float64(rep.Sched.SchedTotal())/tsF, "sched/TS")
			b.ReportMetric(float64(rep.Sched.IdleTotal())/tsF, "idle/TS")
		})
	}
}

// BenchmarkTable7 regenerates Fig. 7's rows: T32 per platform with the
// spawn-overhead and scalability ratios.
func BenchmarkTable7(b *testing.B) {
	for _, name := range allNames {
		spec := specByName(b, name)
		for _, pol := range []sched.Policy{sched.Cilk, sched.NUMAWS} {
			b.Run(fmt.Sprintf("%s/%v", name, pol), func(b *testing.B) {
				b.ReportAllocs()
				ts, err := harness.RunSerial(context.Background(), spec, harness.Options{})
				if err != nil {
					b.Fatal(err)
				}
				t1, err := harness.RunOne(context.Background(), spec, pol, harness.Options{P: 1})
				if err != nil {
					b.Fatal(err)
				}
				var tp *core.Report
				for i := 0; i < b.N; i++ {
					tp, err = harness.RunOne(context.Background(), spec, pol, harness.Options{Verify: true})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(t1.Time)/float64(ts.Time), "T1/TS")
				b.ReportMetric(float64(t1.Time)/float64(tp.Time), "T1/T32")
				b.ReportMetric(float64(tp.Time), "T32-cycles")
			})
		}
	}
}

// BenchmarkTable8 regenerates Fig. 8's rows: the work/scheduling/idle
// breakdown and the work inflation at P=32 per platform.
func BenchmarkTable8(b *testing.B) {
	for _, name := range allNames {
		spec := specByName(b, name)
		for _, pol := range []sched.Policy{sched.Cilk, sched.NUMAWS} {
			b.Run(fmt.Sprintf("%s/%v", name, pol), func(b *testing.B) {
				b.ReportAllocs()
				t1, err := harness.RunOne(context.Background(), spec, pol, harness.Options{P: 1})
				if err != nil {
					b.Fatal(err)
				}
				var tp *core.Report
				for i := 0; i < b.N; i++ {
					tp, err = harness.RunOne(context.Background(), spec, pol, harness.Options{Verify: true})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(tp.Sched.WorkTotal())/float64(t1.Time), "W32/T1")
				b.ReportMetric(float64(tp.Sched.SchedTotal()), "S32-cycles")
				b.ReportMetric(float64(tp.Sched.IdleTotal()), "I32-cycles")
			})
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9's series: NUMA-WS speedup T1/TP at each
// packed worker count.
func BenchmarkFig9(b *testing.B) {
	for _, name := range []string{"cilksort", "heat", "strassen-z", "hull1", "hull2", "cg", "matmul-z"} {
		spec := specByName(b, name)
		t1 := map[string]int64{}
		for _, p := range harness.Fig9Points {
			b.Run(fmt.Sprintf("%s/P=%d", name, p), func(b *testing.B) {
				b.ReportAllocs()
				var rep *core.Report
				var err error
				for i := 0; i < b.N; i++ {
					rep, err = harness.RunOne(context.Background(), spec, sched.NUMAWS, harness.Options{P: p})
					if err != nil {
						b.Fatal(err)
					}
				}
				if p == 1 {
					t1[name] = rep.Time
				}
				if base := t1[name]; base != 0 {
					b.ReportMetric(float64(base)/float64(rep.Time), "T1/TP")
				}
				b.ReportMetric(float64(rep.Time), "TP-cycles")
			})
		}
	}
}

// BenchmarkFig6 measures the index-computation overhead of the three
// layouts — the paper's motivation for blocking the Z curve: "Computing
// indices for Z-Morton layout on the cell-by-cell basis is costly".
func BenchmarkFig6(b *testing.B) {
	a := memory.NewAllocator(4)
	for _, tc := range []struct {
		kind  layout.Kind
		block int
	}{{layout.RowMajor, 0}, {layout.Morton, 0}, {layout.BlockedMorton, 32}} {
		m := layout.NewMatrix(a, tc.kind.String(), 256, tc.kind, tc.block, memory.Interleave{})
		b.Run(tc.kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			s := 0
			for i := 0; i < b.N; i++ {
				s += m.Index(i%256, (i*7)%256)
			}
			_ = s
		})
	}
}

// heatAblation builds the hinted workload used by the ablation benchmarks.
func heatAblation(cfg core.Config, b *testing.B) *core.Report {
	b.Helper()
	w := workloads.NewHeat(256, 256, 10, 64, workloads.Config{Aware: true, Seed: 5})
	rt := core.NewRuntime(cfg)
	w.Prepare(rt)
	rep := rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		b.Fatal(err)
	}
	return rep
}

func ablationConfig() core.Config {
	return core.DefaultConfig(32, sched.NUMAWS)
}

// BenchmarkAblationNoCoinFlip disables the thief's deque-vs-mailbox coin
// flip (always mailbox first). The paper's Lemma 1 needs the coin so the
// deque head keeps probability >= 1/(2cP).
func BenchmarkAblationNoCoinFlip(b *testing.B) {
	for _, coin := range []bool{true, false} {
		name := "coin-flip"
		if !coin {
			name = "mailbox-first"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Sched.DisableCoinFlip = !coin
				rep = heatAblation(cfg, b)
			}
			b.ReportMetric(float64(rep.Time), "T32-cycles")
			b.ReportMetric(float64(rep.Sched.Steals), "steals")
		})
	}
}

// BenchmarkAblationPushThreshold sweeps the pushing threshold; unbounded
// pushing breaks the amortization of pushes against steals.
func BenchmarkAblationPushThreshold(b *testing.B) {
	for _, th := range []int{-1, 1, 4, 16, 256} {
		b.Run(fmt.Sprintf("threshold=%d", th), func(b *testing.B) {
			b.ReportAllocs()
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Sched.PushThreshold = th
				rep = heatAblation(cfg, b)
			}
			b.ReportMetric(float64(rep.Time), "T32-cycles")
			b.ReportMetric(float64(rep.Sched.PushAttempts), "push-attempts")
		})
	}
}

// BenchmarkAblationMailboxSize compares the paper's single-entry mailbox
// against multi-entry FIFOs.
func BenchmarkAblationMailboxSize(b *testing.B) {
	for _, size := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Sched.MailboxCapacity = size
				rep = heatAblation(cfg, b)
			}
			b.ReportMetric(float64(rep.Time), "T32-cycles")
			b.ReportMetric(float64(rep.Sched.Pushes), "pushes")
		})
	}
}

// BenchmarkAblationUniformSteal disables the locality bias (uniform victim
// selection) while keeping mailboxes and pushing.
func BenchmarkAblationUniformSteal(b *testing.B) {
	for _, bias := range []bool{true, false} {
		name := "biased"
		if !bias {
			name = "uniform"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Sched.DisableBias = !bias
				rep = heatAblation(cfg, b)
			}
			b.ReportMetric(float64(rep.Time), "T32-cycles")
			b.ReportMetric(float64(rep.Cache.Remote()), "remote-accesses")
		})
	}
}

// BenchmarkAblationEagerPush violates the work-first principle: work
// pushing at spawn time, on the work path. The work term (and T1/TS, the
// paper's work-efficiency measure) inflates.
func BenchmarkAblationEagerPush(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var rep *core.Report
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Sched.EagerPush = eager
				rep = heatAblation(cfg, b)
			}
			b.ReportMetric(float64(rep.Time), "T32-cycles")
			b.ReportMetric(float64(rep.Sched.WorkTotal()), "W32-cycles")
		})
	}
}

// BenchmarkMeasureAllJobs times the full experiment sweep serially and on
// the whole-machine worker pool — the wall-clock win of internal/exec.
// Each iteration is one complete MeasureAll at the small scale; compare
// jobs=1 against jobs=N for the speedup (results are identical; see
// TestMeasureAllParallelMatchesSerial). Restricted to the paper nine:
// the committed BENCH_baseline.json entry was captured over that set,
// and CI benchstats every push against it.
func BenchmarkMeasureAllJobs(b *testing.B) {
	specs := make([]harness.Spec, len(allNames))
	for i, name := range allNames {
		specs[i] = specByName(b, name)
	}
	counts := []int{1}
	if exec.DefaultJobs() > 1 {
		counts = append(counts, exec.DefaultJobs())
	}
	for _, jobs := range counts {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := harness.MeasureAll(context.Background(), specs, harness.Options{Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGrid times one full MeasureAll over a small measurement grid —
// the paper nine, two seeds, verification on — on the pooled path
// (default) and on the fully unamortized path (FreshInputs). Each
// iteration re-runs the whole grid, so the pooled variant shows what the
// input pool, the shared TS memo, and the verify-reference caches save
// across the (policy, P, seed) cells; the fresh variant is the control.
// The committed BENCH_grid.json entry gates simulated cycles and allocs/op
// in CI (cmd/benchgate).
func BenchmarkGrid(b *testing.B) {
	specs := make([]harness.Spec, len(allNames))
	for i, name := range allNames {
		specs[i] = specByName(b, name)
	}
	for _, fresh := range []bool{false, true} {
		name := "pooled"
		if fresh {
			name = "fresh"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var total int64
			for i := 0; i < b.N; i++ {
				rows, err := harness.MeasureAll(context.Background(), specs, harness.Options{
					P: 8, Seeds: 2, Verify: true, Jobs: 1, FreshInputs: fresh,
				})
				if err != nil {
					b.Fatal(err)
				}
				total = 0
				for _, r := range rows {
					total += r.NUMAWS.TP
				}
			}
			b.ReportMetric(float64(total), "gridTP-cycles")
		})
	}
}

// --- Microbenchmarks of the substrates ---

func BenchmarkDequePushPop(b *testing.B) {
	b.ReportAllocs()
	d := deque.New[int](1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushTail(i)
		d.PopTail()
	}
}

func BenchmarkDequeSteal(b *testing.B) {
	b.ReportAllocs()
	d := deque.New[int](1 << 20)
	for i := 0; i < 1<<20; i++ {
		d.PushTail(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.StealHead(); !ok {
			b.StopTimer()
			for j := 0; j < 1<<20; j++ {
				d.PushTail(j)
			}
			b.StartTimer()
		}
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	b.ReportAllocs()
	top := topology.XeonE5_4620()
	h := cache.NewHierarchy(top, cache.DefaultGeometry(), cache.DefaultLatency())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(int64(i)*10, i%32, int64(i%100000), i%4, i%5 == 0, false)
	}
}

func BenchmarkMortonIndex(b *testing.B) {
	b.ReportAllocs()
	var s int64
	for i := 0; i < b.N; i++ {
		s += layout.MortonIndex(i&0xFFFF, (i*3)&0xFFFF)
	}
	_ = s
}

func BenchmarkRNGPick(b *testing.B) {
	b.ReportAllocs()
	g := sim.NewRNG(1)
	w := []float64{4, 2, 1, 2, 4, 8, 1, 1}
	for i := 0; i < b.N; i++ {
		g.Pick(w)
	}
}

// BenchmarkPickerPick is the victim-selection hot path after the rework:
// the weights are validated and prefix-summed once, each draw is one
// Float64 plus a binary search. Compare against BenchmarkRNGPick (the
// linear validate-and-scan it replaced); both draw the identical index
// stream. The 32-weight case is the paper machine's per-thief vector.
func BenchmarkPickerPick(b *testing.B) {
	for _, n := range []int{8, 32, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			w := make([]float64, n)
			for i := range w {
				w[i] = float64(int(1) << (i % 3)) // hop-class-like 4/2/1 values
			}
			p := sim.NewPicker(w)
			g := sim.NewRNG(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Pick(g)
			}
		})
	}
}

// BenchmarkSimQueue is the event loop's heartbeat: every simulated event
// pops the earliest worker and pushes its next wakeup. The 4-ary heap does
// this with zero allocations; the old container/heap boxed one item per
// push and one per pop.
func BenchmarkSimQueue(b *testing.B) {
	for _, p := range []int{32, 1024} {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			var q sim.Queue
			for id := 0; id < p; id++ {
				q.Push(int64(id)%7, id)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at, id := q.Pop()
				q.Push(at+int64(i%101), id)
			}
		})
	}
}

// BenchmarkDagSpan measures the longest-path pass over a recorded
// computation dag (CSR form: one flat edge array, two transient
// allocations per call).
func BenchmarkDagSpan(b *testing.B) {
	b.ReportAllocs()
	w := workloads.NewHeat(128, 128, 8, 16, workloads.Config{Aware: true, Seed: 5})
	cfg := core.DefaultConfig(32, sched.NUMAWS)
	cfg.RecordDAG = true
	rt := core.NewRuntime(cfg)
	w.Prepare(rt)
	rep := rt.Run(w.Root())
	g := rep.DAG
	b.ResetTimer()
	var span int64
	for i := 0; i < b.N; i++ {
		span = g.Span()
	}
	b.ReportMetric(float64(g.Nodes()), "nodes")
	b.ReportMetric(float64(span), "span-cycles")
}

// BenchmarkAblationBandwidth toggles the DRAM bandwidth model. With
// occupancy on, the first-touch-on-socket-0 baseline pays queuing at the
// hot controller — the "memory bandwidth issues" work-inflation component;
// NUMA-WS placement removes most of it.
func BenchmarkAblationBandwidth(b *testing.B) {
	for _, occ := range []int64{0, 6, 48} {
		for _, pol := range []sched.Policy{sched.Cilk, sched.NUMAWS} {
			b.Run(fmt.Sprintf("occupancy=%d/%v", occ, pol), func(b *testing.B) {
				b.ReportAllocs()
				var rep *core.Report
				for i := 0; i < b.N; i++ {
					cfg := core.DefaultConfig(32, pol)
					cfg.Latency = cache.DefaultLatency()
					cfg.Latency.DRAMOccupancy = occ
					w := workloads.NewHeat(256, 256, 10, 64,
						workloads.Config{Aware: pol == sched.NUMAWS, Seed: 5})
					rt := core.NewRuntime(cfg)
					w.Prepare(rt)
					rep = rt.Run(w.Root())
					if err := w.Verify(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(rep.Time), "T32-cycles")
				b.ReportMetric(float64(rep.Sched.WorkTotal()), "W32-cycles")
			})
		}
	}
}
